//! Elastic scaling scenarios and migration plans (Table 1 of the paper).
//!
//! The paper evaluates the two most common Cloud elasticity scenarios:
//!
//! * **scale-in** — from `⌈I/2⌉` D2 VMs (2 slots) to `⌈I/4⌉` D3 VMs
//!   (4 slots): consolidate to fewer, larger VMs;
//! * **scale-out** — from `⌈I/2⌉` D2 VMs to `I` D1 VMs (1 slot): spread to
//!   more, smaller VMs;
//!
//! where `I` is the user-task instance count. The total slot count never
//! changes — only the VMs they are packed onto. Source and sink stay on a
//! pinned 4-slot VM. Determining *this* plan is the scheduling problem the
//! paper scopes out (§1 fn. 1); enacting it reliably is what `flowmig-core`
//! does.

use crate::assignment::Assignment;
use crate::scheduler::{InstanceScheduler, RoundRobinScheduler, ScheduleError};
use crate::vm::{VmPool, VmRole, VmSize};
use flowmig_topology::{Dataflow, InstanceId, InstanceSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which way the deployment is being scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleDirection {
    /// Consolidate onto fewer, larger VMs (D2 → D3).
    In,
    /// Spread onto more, smaller VMs (D2 → D1).
    Out,
}

impl fmt::Display for ScaleDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleDirection::In => write!(f, "scale-in"),
            ScaleDirection::Out => write!(f, "scale-out"),
        }
    }
}

/// A complete migration plan: the VM pool, the initial and target
/// assignments, and the set of instances that must move.
///
/// # Examples
///
/// ```
/// use flowmig_cluster::{ScaleDirection, ScalePlan};
/// use flowmig_topology::{library, InstanceSet};
///
/// let dag = library::grid();
/// let instances = InstanceSet::plan(&dag);
/// let plan = ScalePlan::paper_scenario(&dag, &instances, ScaleDirection::In)?;
/// // Table 1: Grid runs on 11 D2 VMs and scales in to 6 D3 VMs.
/// assert_eq!(plan.initial_vm_count(), 11);
/// assert_eq!(plan.target_vm_count(), 6);
/// // All 21 user instances migrate (the worker VM set is replaced).
/// assert_eq!(plan.migrating().len(), 21);
/// # Ok::<(), flowmig_cluster::ScheduleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScalePlan {
    pool: VmPool,
    initial: Assignment,
    target: Assignment,
    migrating: Vec<InstanceId>,
    direction: ScaleDirection,
}

impl ScalePlan {
    /// Builds the paper's scenario for `direction` using Storm's default
    /// round-robin scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if either deployment cannot be placed
    /// (cannot happen for the Table 1 scenarios, which size the pool from
    /// the instance count).
    pub fn paper_scenario(
        dag: &Dataflow,
        instances: &InstanceSet,
        direction: ScaleDirection,
    ) -> Result<Self, ScheduleError> {
        Self::paper_scenario_with(dag, instances, direction, &RoundRobinScheduler)
    }

    /// Builds the paper's scenario with an explicit scheduling policy
    /// (used by the scheduler ablation).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if either deployment cannot be placed.
    pub fn paper_scenario_with(
        dag: &Dataflow,
        instances: &InstanceSet,
        direction: ScaleDirection,
        scheduler: &dyn InstanceScheduler,
    ) -> Result<Self, ScheduleError> {
        let users = instances.user_instance_count(dag);
        let initial_vms = users.div_ceil(VmSize::D2.slots() as usize);
        let (target_size, target_vms) = match direction {
            ScaleDirection::In => (VmSize::D3, users.div_ceil(VmSize::D3.slots() as usize)),
            ScaleDirection::Out => (VmSize::D1, users),
        };

        let mut pool = VmPool::new();
        // Enough pinned 4-slot VMs for every source and sink instance: one
        // suffices for the paper's dataflows (≤ 2 pinned instances), but
        // width-scaled workloads grow the pinned set with the dataflow.
        let pinned = instances.len() - users;
        for _ in 0..pinned.div_ceil(VmSize::D3.slots() as usize).max(1) {
            pool.add(VmSize::D3, VmRole::Pinned);
        }
        for _ in 0..initial_vms {
            pool.add(VmSize::D2, VmRole::InitialWorker);
        }
        for _ in 0..target_vms {
            pool.add(target_size, VmRole::TargetWorker);
        }
        Self::between(dag, instances, pool, direction, scheduler)
    }

    /// Builds a plan over an explicit pool: schedules the initial deployment
    /// on `InitialWorker` VMs and the target on `TargetWorker` VMs.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if either deployment cannot be placed.
    pub fn between(
        dag: &Dataflow,
        instances: &InstanceSet,
        pool: VmPool,
        direction: ScaleDirection,
        scheduler: &dyn InstanceScheduler,
    ) -> Result<Self, ScheduleError> {
        let initial = scheduler.assign(dag, instances, &pool, VmRole::InitialWorker)?;
        let target = scheduler.assign(dag, instances, &pool, VmRole::TargetWorker)?;
        let migrating = initial.moved_instances(&target);
        Ok(ScalePlan { pool, initial, target, migrating, direction })
    }

    /// The combined VM pool (pinned + initial workers + target workers).
    pub fn pool(&self) -> &VmPool {
        &self.pool
    }

    /// The assignment before migration.
    pub fn initial(&self) -> &Assignment {
        &self.initial
    }

    /// The assignment after migration.
    pub fn target(&self) -> &Assignment {
        &self.target
    }

    /// Instances that change slots (killed + respawned by the rebalance).
    pub fn migrating(&self) -> &[InstanceId] {
        &self.migrating
    }

    /// The scaling direction of this plan.
    pub fn direction(&self) -> ScaleDirection {
        self.direction
    }

    /// Number of worker VMs in the initial deployment (Table 1 "Default").
    pub fn initial_vm_count(&self) -> usize {
        self.pool.with_role(VmRole::InitialWorker).count()
    }

    /// Number of worker VMs in the target deployment (Table 1 scale column).
    pub fn target_vm_count(&self) -> usize {
        self.pool.with_role(VmRole::TargetWorker).count()
    }

    /// Fraction of worker slots in use in the target deployment — the
    /// utilization argument of Fig. 1 (e.g. 7 tasks on 2×4-core VMs
    /// → 87.5 %).
    pub fn target_utilization(&self) -> f64 {
        let used = self.migrating.len();
        let total = self.pool.slot_count(VmRole::TargetWorker);
        if total == 0 {
            0.0
        } else {
            used as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmig_topology::library;

    /// Table 1 of the paper, all three VM columns.
    #[test]
    fn table1_vm_counts() {
        let rows = [
            ("linear", library::linear(), 3, 2, 5),
            ("diamond", library::diamond(), 4, 2, 8),
            ("star", library::star(), 4, 2, 8),
            ("grid", library::grid(), 11, 6, 21),
            ("traffic", library::traffic(), 7, 4, 13),
        ];
        for (name, dag, default_vms, in_vms, out_vms) in rows {
            let inst = InstanceSet::plan(&dag);
            let pin = ScalePlan::paper_scenario(&dag, &inst, ScaleDirection::In).unwrap();
            assert_eq!(pin.initial_vm_count(), default_vms, "{name} default");
            assert_eq!(pin.target_vm_count(), in_vms, "{name} scale-in");
            let pout = ScalePlan::paper_scenario(&dag, &inst, ScaleDirection::Out).unwrap();
            assert_eq!(pout.initial_vm_count(), default_vms, "{name} default (out)");
            assert_eq!(pout.target_vm_count(), out_vms, "{name} scale-out");
        }
    }

    #[test]
    fn pinned_pool_grows_with_scaled_source_and_sink() {
        // gridx6: 6 source + 6 sink instances need ⌈12/4⌉ = 3 pinned VMs;
        // the paper dataflows (≤ 2 pinned instances) keep exactly one.
        let dag = library::grid_scaled(6);
        let inst = InstanceSet::plan(&dag);
        let plan = ScalePlan::paper_scenario(&dag, &inst, ScaleDirection::In).unwrap();
        assert_eq!(plan.pool().with_role(VmRole::Pinned).count(), 3);
        assert_eq!(plan.migrating().len(), 15 * 6);
        let small = library::linear();
        let sinst = InstanceSet::plan(&small);
        let splan = ScalePlan::paper_scenario(&small, &sinst, ScaleDirection::In).unwrap();
        assert_eq!(splan.pool().with_role(VmRole::Pinned).count(), 1);
    }

    #[test]
    fn all_user_instances_migrate_and_pinned_stay() {
        let dag = library::star();
        let inst = InstanceSet::plan(&dag);
        let plan = ScalePlan::paper_scenario(&dag, &inst, ScaleDirection::Out).unwrap();
        assert_eq!(plan.migrating().len(), inst.user_instance_count(&dag));
        // Pinned (source/sink) instances keep their slots.
        for i in inst.iter() {
            let user = dag.spec(inst.task_of(i)).kind() == flowmig_topology::TaskKind::Operator;
            let moved = plan.migrating().contains(&i);
            assert_eq!(user, moved, "instance {i}");
        }
    }

    #[test]
    fn slot_conservation() {
        // Total user slots equal before and after (the paper keeps slot
        // count constant; only the packing changes).
        for dag in library::paper_dataflows() {
            let inst = InstanceSet::plan(&dag);
            for dir in [ScaleDirection::In, ScaleDirection::Out] {
                let plan = ScalePlan::paper_scenario(&dag, &inst, dir).unwrap();
                let users = inst.user_instance_count(&dag);
                assert!(plan.pool().slot_count(VmRole::InitialWorker) >= users);
                assert!(plan.pool().slot_count(VmRole::TargetWorker) >= users);
            }
        }
    }

    #[test]
    fn fig1_utilization_example() {
        // Fig. 1: 7 tasks consolidated from 5×2-core VMs (70 % utilized)
        // to 2×4-core VMs (87.5 % utilized).
        let dag = library::linear_n(7);
        let inst = InstanceSet::plan(&dag);
        let mut pool = VmPool::new();
        pool.add(VmSize::D3, VmRole::Pinned);
        for _ in 0..5 {
            pool.add(VmSize::D2, VmRole::InitialWorker);
        }
        for _ in 0..2 {
            pool.add(VmSize::D3, VmRole::TargetWorker);
        }
        let plan = ScalePlan::between(&dag, &inst, pool, ScaleDirection::In, &RoundRobinScheduler)
            .unwrap();
        let initial_util =
            plan.migrating().len() as f64 / plan.pool().slot_count(VmRole::InitialWorker) as f64;
        assert_eq!(initial_util, 0.7);
        assert_eq!(plan.target_utilization(), 0.875);
    }

    #[test]
    fn direction_display() {
        assert_eq!(ScaleDirection::In.to_string(), "scale-in");
        assert_eq!(ScaleDirection::Out.to_string(), "scale-out");
    }

    #[test]
    fn custom_pool_via_between() {
        let dag = library::linear();
        let inst = InstanceSet::plan(&dag);
        let mut pool = VmPool::new();
        pool.add(VmSize::D3, VmRole::Pinned);
        for _ in 0..5 {
            pool.add(VmSize::D2, VmRole::InitialWorker);
        }
        for _ in 0..5 {
            pool.add(VmSize::D2, VmRole::TargetWorker);
        }
        let plan = ScalePlan::between(&dag, &inst, pool, ScaleDirection::Out, &RoundRobinScheduler)
            .unwrap();
        assert_eq!(plan.migrating().len(), 5);
        assert_eq!(plan.initial_vm_count(), 5);
    }
}
