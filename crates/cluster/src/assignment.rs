//! Instance→slot assignments and migration diffs.

use crate::vm::{SlotId, VmId};
use flowmig_topology::InstanceId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A complete mapping of every task instance to a slot.
///
/// # Examples
///
/// ```
/// use flowmig_cluster::{Assignment, SlotId, VmId};
/// use flowmig_topology::InstanceId;
///
/// let mut a = Assignment::new();
/// let i0 = InstanceId::from_index(0);
/// a.place(i0, SlotId { vm: VmId::from_index(1), slot: 0 });
/// assert_eq!(a.slot_of(i0).unwrap().vm, VmId::from_index(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "AssignmentSerde", into = "AssignmentSerde")]
pub struct Assignment {
    slots: HashMap<InstanceId, SlotId>,
    /// Slots currently holding an instance — the O(1) exclusivity check
    /// [`place`](Self::place) runs per placement. Kept in lockstep with
    /// `slots` (a full scan per `place` made building a 10k-instance
    /// assignment quadratic).
    occupied: HashSet<SlotId>,
}

/// Serde shadow of [`Assignment`]: only the instance→slot map is
/// persisted (the occupied set is derived), keeping the serialized form
/// identical to the pre-`occupied` layout.
#[derive(Serialize, Deserialize)]
#[serde(rename = "Assignment")]
struct AssignmentSerde {
    slots: HashMap<InstanceId, SlotId>,
}

impl From<AssignmentSerde> for Assignment {
    fn from(s: AssignmentSerde) -> Self {
        let occupied = s.slots.values().copied().collect();
        Assignment { slots: s.slots, occupied }
    }
}

impl From<Assignment> for AssignmentSerde {
    fn from(a: Assignment) -> Self {
        AssignmentSerde { slots: a.slots }
    }
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Places `instance` on `slot`, returning the previous slot if any.
    ///
    /// # Panics
    ///
    /// Panics if another instance already occupies `slot` (slots are
    /// exclusive: one instance per 1-core slot).
    pub fn place(&mut self, instance: InstanceId, slot: SlotId) -> Option<SlotId> {
        let prev = self.slots.insert(instance, slot);
        if let Some(p) = prev {
            if p == slot {
                return prev;
            }
            self.occupied.remove(&p);
        }
        assert!(self.occupied.insert(slot), "slot {slot} is already occupied");
        prev
    }

    /// The slot hosting `instance`, if assigned.
    pub fn slot_of(&self, instance: InstanceId) -> Option<SlotId> {
        self.slots.get(&instance).copied()
    }

    /// The VM hosting `instance`, if assigned.
    pub fn vm_of(&self, instance: InstanceId) -> Option<VmId> {
        self.slot_of(instance).map(|s| s.vm)
    }

    /// Number of assigned instances.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(instance, slot)` pairs in instance order
    /// (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, SlotId)> + '_ {
        let mut pairs: Vec<(InstanceId, SlotId)> =
            self.slots.iter().map(|(&i, &s)| (i, s)).collect();
        pairs.sort_by_key(|&(i, _)| i);
        pairs.into_iter()
    }

    /// The set of distinct VMs used by this assignment.
    pub fn vms_used(&self) -> HashSet<VmId> {
        self.slots.values().map(|s| s.vm).collect()
    }

    /// Instances whose slot differs between `self` (old) and `new` — the
    /// set that must be killed and respawned by a rebalance.
    ///
    /// Instances present in only one assignment are counted as moved.
    pub fn moved_instances(&self, new: &Assignment) -> Vec<InstanceId> {
        let mut moved: Vec<InstanceId> = self
            .slots
            .keys()
            .chain(new.slots.keys())
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .filter(|i| self.slot_of(*i) != new.slot_of(*i))
            .collect();
        moved.sort();
        moved
    }
}

impl FromIterator<(InstanceId, SlotId)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (InstanceId, SlotId)>>(iter: T) -> Self {
        let mut a = Assignment::new();
        for (i, s) in iter {
            a.place(i, s);
        }
        a
    }
}

impl Extend<(InstanceId, SlotId)> for Assignment {
    fn extend<T: IntoIterator<Item = (InstanceId, SlotId)>>(&mut self, iter: T) {
        for (i, s) in iter {
            self.place(i, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    fn slot(vm: usize, s: u8) -> SlotId {
        SlotId { vm: VmId::from_index(vm), slot: s }
    }

    #[test]
    fn place_and_lookup() {
        let mut a = Assignment::new();
        let i = InstanceId::from_index(3);
        assert_eq!(a.place(i, slot(0, 1)), None);
        assert_eq!(a.slot_of(i), Some(slot(0, 1)));
        assert_eq!(a.vm_of(i), Some(VmId::from_index(0)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn replace_returns_previous() {
        let mut a = Assignment::new();
        let i = InstanceId::from_index(0);
        a.place(i, slot(0, 0));
        assert_eq!(a.place(i, slot(1, 0)), Some(slot(0, 0)));
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn exclusive_slots() {
        let mut a = Assignment::new();
        a.place(InstanceId::from_index(0), slot(0, 0));
        a.place(InstanceId::from_index(1), slot(0, 0));
    }

    #[test]
    fn moved_instances_detects_changes() {
        let old: Assignment = [
            (InstanceId::from_index(0), slot(0, 0)),
            (InstanceId::from_index(1), slot(0, 1)),
            (InstanceId::from_index(2), slot(1, 0)),
        ]
        .into_iter()
        .collect();
        let new: Assignment = [
            (InstanceId::from_index(0), slot(0, 0)), // unchanged (pinned)
            (InstanceId::from_index(1), slot(2, 0)), // moved
            (InstanceId::from_index(2), slot(2, 1)), // moved
        ]
        .into_iter()
        .collect();
        assert_eq!(
            old.moved_instances(&new),
            vec![InstanceId::from_index(1), InstanceId::from_index(2)]
        );
    }

    #[test]
    fn moved_instances_handles_asymmetric_sets() {
        let old: Assignment = [(InstanceId::from_index(0), slot(0, 0))].into_iter().collect();
        let new = Assignment::new();
        assert_eq!(old.moved_instances(&new), vec![InstanceId::from_index(0)]);
    }

    #[test]
    fn vms_used_deduplicates() {
        let a: Assignment = [
            (InstanceId::from_index(0), slot(0, 0)),
            (InstanceId::from_index(1), slot(0, 1)),
            (InstanceId::from_index(2), slot(3, 0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(a.vms_used().len(), 2);
    }

    #[test]
    fn iter_is_sorted_by_instance() {
        let a: Assignment = [
            (InstanceId::from_index(2), slot(0, 0)),
            (InstanceId::from_index(0), slot(0, 1)),
            (InstanceId::from_index(1), slot(1, 0)),
        ]
        .into_iter()
        .collect();
        let ids: Vec<usize> = a.iter().map(|(i, _)| i.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
