//! Task-instance schedulers.
//!
//! Storm's default scheduler distributes executors round-robin over the
//! available worker slots; the paper uses it for both the initial deployment
//! and the post-rebalance placement (§5, "Storm's default round-robin
//! scheduler is used to map a task instance to an available VM slot").
//! A resource-aware packing scheduler (in the spirit of R-Storm [3]) is
//! provided for the scheduler ablation.

use crate::assignment::Assignment;
use crate::vm::{SlotId, VmPool, VmRole};
use flowmig_topology::{Dataflow, InstanceId, InstanceSet, TaskKind};
use std::error::Error;
use std::fmt;

/// Error raised when a deployment cannot be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// More instances than slots with the requested role.
    NotEnoughSlots {
        /// Instances needing placement.
        needed: usize,
        /// Slots available in the pool for the role.
        available: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotEnoughSlots { needed, available } => {
                write!(f, "not enough slots: need {needed}, have {available}")
            }
        }
    }
}

impl Error for ScheduleError {}

/// A placement policy mapping user-task instances onto worker slots.
///
/// Source and sink instances are always placed on the pinned VM regardless
/// of policy (they are never migrated, §5); implementations only decide the
/// placement of operator instances.
pub trait InstanceScheduler {
    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// Orders the worker slots; instances are assigned to the returned
    /// slots in instance order.
    fn order_slots(&self, pool: &VmPool, slots: Vec<SlotId>) -> Vec<SlotId>;

    /// Produces a full assignment of `instances` onto the pool:
    /// pinned tasks on the pinned VM, operators on `role` worker slots.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NotEnoughSlots`] if the pool lacks capacity
    /// for either the pinned or the operator instances.
    fn assign(
        &self,
        dag: &Dataflow,
        instances: &InstanceSet,
        pool: &VmPool,
        role: VmRole,
    ) -> Result<Assignment, ScheduleError> {
        let mut assignment = Assignment::new();

        // Pinned tasks (source + sink) go on the pinned VM, in order.
        let pinned: Vec<InstanceId> = instances
            .iter()
            .filter(|&i| dag.spec(instances.task_of(i)).kind() != TaskKind::Operator)
            .collect();
        let pinned_slots = pool.slots_of(VmRole::Pinned);
        if pinned.len() > pinned_slots.len() {
            return Err(ScheduleError::NotEnoughSlots {
                needed: pinned.len(),
                available: pinned_slots.len(),
            });
        }
        for (&i, &s) in pinned.iter().zip(&pinned_slots) {
            assignment.place(i, s);
        }

        // Operator instances go on worker slots in policy order.
        let users: Vec<InstanceId> = instances.user_instances(dag).collect();
        let slots = self.order_slots(pool, pool.slots_of(role));
        if users.len() > slots.len() {
            return Err(ScheduleError::NotEnoughSlots {
                needed: users.len(),
                available: slots.len(),
            });
        }
        for (&i, &s) in users.iter().zip(&slots) {
            assignment.place(i, s);
        }
        Ok(assignment)
    }
}

/// Storm's default scheduler: slots are taken round-robin **across VMs**
/// (vm₀ slot 0, vm₁ slot 0, …, vm₀ slot 1, …), spreading load evenly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinScheduler;

impl InstanceScheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn order_slots(&self, _pool: &VmPool, mut slots: Vec<SlotId>) -> Vec<SlotId> {
        // VM-major input → reorder slot-major (round-robin across VMs).
        slots.sort_by_key(|s| (s.slot, s.vm));
        slots
    }
}

/// Resource-aware packing scheduler (R-Storm-flavoured ablation): fills one
/// VM completely before the next, maximizing co-location so connected tasks
/// more often share a VM (lower network latency, fewer VMs touched).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackingScheduler;

impl InstanceScheduler for PackingScheduler {
    fn name(&self) -> &'static str {
        "packing"
    }

    fn order_slots(&self, _pool: &VmPool, mut slots: Vec<SlotId>) -> Vec<SlotId> {
        // VM-major order *is* packing order.
        slots.sort_by_key(|s| (s.vm, s.slot));
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmSize;
    use flowmig_topology::library;

    fn pool_for(n_workers: usize, size: VmSize) -> VmPool {
        let mut pool = VmPool::new();
        pool.add(VmSize::D3, VmRole::Pinned);
        for _ in 0..n_workers {
            pool.add(size, VmRole::InitialWorker);
        }
        pool
    }

    #[test]
    fn round_robin_spreads_across_vms() {
        let dag = library::diamond(); // 8 user instances
        let inst = flowmig_topology::InstanceSet::plan(&dag);
        let pool = pool_for(4, VmSize::D2);
        let a = RoundRobinScheduler.assign(&dag, &inst, &pool, VmRole::InitialWorker).unwrap();
        // First four user instances land on four distinct VMs.
        let users: Vec<InstanceId> = inst.user_instances(&dag).collect();
        let vms: std::collections::HashSet<_> =
            users[..4].iter().map(|&i| a.vm_of(i).unwrap()).collect();
        assert_eq!(vms.len(), 4);
    }

    #[test]
    fn packing_fills_vm_first() {
        let dag = library::diamond();
        let inst = flowmig_topology::InstanceSet::plan(&dag);
        let pool = pool_for(4, VmSize::D2);
        let a = PackingScheduler.assign(&dag, &inst, &pool, VmRole::InitialWorker).unwrap();
        let users: Vec<InstanceId> = inst.user_instances(&dag).collect();
        // First two instances share the first worker VM.
        assert_eq!(a.vm_of(users[0]), a.vm_of(users[1]));
    }

    #[test]
    fn pinned_tasks_go_to_pinned_vm() {
        let dag = library::linear();
        let inst = flowmig_topology::InstanceSet::plan(&dag);
        let pool = pool_for(3, VmSize::D2);
        let a = RoundRobinScheduler.assign(&dag, &inst, &pool, VmRole::InitialWorker).unwrap();
        let pinned_vm = pool.with_role(VmRole::Pinned).next().unwrap();
        for i in inst.iter() {
            let kind = dag.spec(inst.task_of(i)).kind();
            let on_pinned = a.vm_of(i).unwrap() == pinned_vm;
            assert_eq!(on_pinned, kind != TaskKind::Operator, "instance {i}");
        }
    }

    #[test]
    fn insufficient_slots_is_an_error() {
        let dag = library::grid(); // 21 user instances
        let inst = flowmig_topology::InstanceSet::plan(&dag);
        let pool = pool_for(2, VmSize::D2); // only 4 worker slots
        let err =
            RoundRobinScheduler.assign(&dag, &inst, &pool, VmRole::InitialWorker).unwrap_err();
        assert_eq!(err, ScheduleError::NotEnoughSlots { needed: 21, available: 4 });
        assert!(err.to_string().contains("not enough slots"));
    }

    #[test]
    fn every_instance_is_placed_exactly_once() {
        let dag = library::traffic();
        let inst = flowmig_topology::InstanceSet::plan(&dag);
        let pool = pool_for(7, VmSize::D2);
        for sched in [&RoundRobinScheduler as &dyn InstanceScheduler, &PackingScheduler] {
            let a = sched.assign(&dag, &inst, &pool, VmRole::InitialWorker).unwrap();
            assert_eq!(a.len(), inst.len(), "{}", sched.name());
            let slots: std::collections::HashSet<_> = a.iter().map(|(_, s)| s).collect();
            assert_eq!(slots.len(), inst.len(), "no slot reuse");
        }
    }
}
