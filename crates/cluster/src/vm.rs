//! Virtual machines and resource slots.
//!
//! The paper's Storm cluster divides Azure D-series VMs into 1-core resource
//! slots; each slot runs exactly one task instance (§5, "Each resource slot
//! of Storm runs a distinct task instance, and is assigned a 1-core Intel
//! Xeon E5 v3 CPU").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a VM within an experiment's combined VM pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub(crate) u32);

impl VmId {
    /// Dense index of this VM.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VmId` from a dense index.
    pub const fn from_index(index: usize) -> Self {
        VmId(index as u32)
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A VM size: a name and a number of 1-core slots.
///
/// The Azure D-series sizes used in the paper are provided as constants.
///
/// # Examples
///
/// ```
/// use flowmig_cluster::VmSize;
///
/// assert_eq!(VmSize::D2.slots(), 2);
/// assert_eq!(VmSize::D3.slots(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmSize {
    name: &'static str,
    slots: u8,
}

impl VmSize {
    /// Azure D1: 1 core → 1 slot (scale-out target).
    pub const D1: VmSize = VmSize { name: "D1", slots: 1 };
    /// Azure D2: 2 cores → 2 slots (default deployment).
    pub const D2: VmSize = VmSize { name: "D2", slots: 2 };
    /// Azure D3: 4 cores → 4 slots (scale-in target; also the pinned
    /// source/sink VM and the Redis VM in the paper).
    pub const D3: VmSize = VmSize { name: "D3", slots: 4 };

    /// A custom size with `slots` 1-core slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub const fn custom(name: &'static str, slots: u8) -> VmSize {
        assert!(slots > 0, "a VM needs at least one slot");
        VmSize { name, slots }
    }

    /// Size name (e.g. `"D2"`).
    pub const fn name(self) -> &'static str {
        self.name
    }

    /// Number of 1-core slots.
    pub const fn slots(self) -> u8 {
        self.slots
    }
}

impl fmt::Display for VmSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} slots)", self.name, self.slots)
    }
}

/// A slot: one core of one VM, hosting at most one task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId {
    /// The VM hosting this slot.
    pub vm: VmId,
    /// Slot index within the VM (0-based, `< VmSize::slots`).
    pub slot: u8,
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.vm, self.slot)
    }
}

/// Role a VM plays in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmRole {
    /// Hosts migratable user-task instances in the **initial** deployment.
    InitialWorker,
    /// Hosts migratable user-task instances in the **target** deployment.
    TargetWorker,
    /// The pinned VM hosting source and sink (never migrated, §5).
    Pinned,
}

/// The pool of VMs available to one experiment: the pinned source/sink VM
/// plus the initial and target worker sets (scale-in/-out swaps the entire
/// worker set, so both sets coexist in the pool).
///
/// # Examples
///
/// ```
/// use flowmig_cluster::{VmPool, VmRole, VmSize};
///
/// let mut pool = VmPool::new();
/// let pinned = pool.add(VmSize::D3, VmRole::Pinned);
/// let w1 = pool.add(VmSize::D2, VmRole::InitialWorker);
/// assert_eq!(pool.slot_count(VmRole::InitialWorker), 2);
/// assert_ne!(pinned, w1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VmPool {
    sizes: Vec<VmSize>,
    roles: Vec<VmRole>,
}

impl VmPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a VM, returning its id.
    pub fn add(&mut self, size: VmSize, role: VmRole) -> VmId {
        let id = VmId::from_index(self.sizes.len());
        self.sizes.push(size);
        self.roles.push(role);
        id
    }

    /// Number of VMs in the pool.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Returns true if the pool has no VMs.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size of VM `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the pool.
    pub fn size(&self, id: VmId) -> VmSize {
        self.sizes[id.index()]
    }

    /// Role of VM `id`.
    pub fn role(&self, id: VmId) -> VmRole {
        self.roles[id.index()]
    }

    /// Iterates over VM ids with the given role.
    pub fn with_role(&self, role: VmRole) -> impl Iterator<Item = VmId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(move |(_, &r)| r == role)
            .map(|(i, _)| VmId::from_index(i))
    }

    /// All slots of VMs with the given role, VM-major order.
    pub fn slots_of(&self, role: VmRole) -> Vec<SlotId> {
        let mut out = Vec::new();
        for vm in self.with_role(role) {
            for s in 0..self.size(vm).slots() {
                out.push(SlotId { vm, slot: s });
            }
        }
        out
    }

    /// Total slot count across VMs with the given role.
    pub fn slot_count(&self, role: VmRole) -> usize {
        self.with_role(role).map(|vm| self.size(vm).slots() as usize).sum()
    }

    /// Iterates over all VM ids.
    pub fn iter(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.sizes.len()).map(VmId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_series_presets() {
        assert_eq!(VmSize::D1.slots(), 1);
        assert_eq!(VmSize::D2.slots(), 2);
        assert_eq!(VmSize::D3.slots(), 4);
        assert_eq!(VmSize::D3.name(), "D3");
        assert_eq!(VmSize::D2.to_string(), "D2(2 slots)");
    }

    #[test]
    fn custom_size() {
        let s = VmSize::custom("D4", 8);
        assert_eq!(s.slots(), 8);
    }

    #[test]
    fn pool_roles_and_slots() {
        let mut pool = VmPool::new();
        pool.add(VmSize::D3, VmRole::Pinned);
        pool.add(VmSize::D2, VmRole::InitialWorker);
        pool.add(VmSize::D2, VmRole::InitialWorker);
        pool.add(VmSize::D3, VmRole::TargetWorker);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.slot_count(VmRole::InitialWorker), 4);
        assert_eq!(pool.slot_count(VmRole::TargetWorker), 4);
        assert_eq!(pool.slot_count(VmRole::Pinned), 4);
        let slots = pool.slots_of(VmRole::InitialWorker);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].to_string(), "vm1:0");
        assert_eq!(slots[3].to_string(), "vm2:1");
    }

    #[test]
    fn with_role_filters() {
        let mut pool = VmPool::new();
        let p = pool.add(VmSize::D3, VmRole::Pinned);
        pool.add(VmSize::D1, VmRole::TargetWorker);
        let pinned: Vec<VmId> = pool.with_role(VmRole::Pinned).collect();
        assert_eq!(pinned, vec![p]);
    }
}
