//! # flowmig-metrics
//!
//! Observability and analysis for the `flowmig` reproduction of *"Toward
//! Reliable and Rapid Elasticity for Streaming Dataflows on Clouds"*
//! (Shukla & Simmhan, ICDCS 2018).
//!
//! The engine appends [`TraceEvent`]s to a [`TraceLog`] as a run executes;
//! everything in the paper's evaluation is then a pure function of the log:
//!
//! * [`MigrationMetrics`] — the seven §4 metrics (restore, drain/capture,
//!   rebalance, catchup, recovery, stabilization, loss/replay counts);
//! * [`RateTimeline`] — the input/output throughput series of Fig. 7;
//! * [`LatencyTimeline`] — the windowed latency series of Fig. 9;
//! * [`find_stabilization`] — the 20 %-band / 60 s-window stability rule;
//! * [`Summary`] — cross-seed aggregation for the benchmark tables.
//!
//! This crate deliberately has no dependency on the engine, so every
//! analyzer is testable against hand-built traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod migration;
mod stability;
mod stats;
mod timeline;
mod trace;

pub use migration::MigrationMetrics;
pub use stability::{find_stabilization, StabilityCriteria};
pub use stats::{median, percentile, Summary};
pub use timeline::{latency_samples_ms, LatencyTimeline, RateTimeline};
pub use trace::{ControlKind, MigrationPhase, RootId, TraceEvent, TraceLog};
