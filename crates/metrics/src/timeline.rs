//! Throughput and latency timelines (Figs. 7 and 9 of the paper).

use crate::trace::{TraceEvent, TraceLog};
use flowmig_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Input/output throughput over fixed-width buckets, as in Fig. 7.
///
/// Input counts source emissions (including replays — the paper's input-rate
/// spikes at 30 s intervals for DSM are replay bursts); output counts sink
/// arrivals.
///
/// # Examples
///
/// ```
/// use flowmig_metrics::{RateTimeline, RootId, TraceEvent, TraceLog};
/// use flowmig_sim::{SimDuration, SimTime};
///
/// let mut log = TraceLog::new();
/// for i in 0..80 {
///     log.record(TraceEvent::SourceEmit {
///         root: RootId(i),
///         at: SimTime::from_millis(i * 125),
///         replay: false,
///     });
/// }
/// let tl = RateTimeline::from_trace(&log, SimDuration::from_secs(10));
/// assert_eq!(tl.input_rate_hz(0), 8.0); // 8 ev/s steady input
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateTimeline {
    bucket: SimDuration,
    input: Vec<u32>,
    output: Vec<u32>,
}

impl RateTimeline {
    /// Builds a timeline from a trace with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn from_trace(log: &TraceLog, bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let mut input: Vec<u32> = Vec::new();
        let mut output: Vec<u32> = Vec::new();
        let w = bucket.as_micros();
        let bump = |v: &mut Vec<u32>, at: SimTime| {
            let idx = (at.as_micros() / w) as usize;
            if v.len() <= idx {
                v.resize(idx + 1, 0);
            }
            v[idx] += 1;
        };
        for e in log.iter() {
            match *e {
                TraceEvent::SourceEmit { at, .. } => bump(&mut input, at),
                TraceEvent::SinkArrival { at, .. } => bump(&mut output, at),
                _ => {}
            }
        }
        let n = input.len().max(output.len());
        input.resize(n, 0);
        output.resize(n, 0);
        RateTimeline { bucket, input, output }
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// Returns true if the timeline has no buckets.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// Input (source emission) rate of bucket `idx` in events/second.
    pub fn input_rate_hz(&self, idx: usize) -> f64 {
        self.input.get(idx).copied().unwrap_or(0) as f64 / self.bucket.as_secs_f64()
    }

    /// Output (sink arrival) rate of bucket `idx` in events/second.
    pub fn output_rate_hz(&self, idx: usize) -> f64 {
        self.output.get(idx).copied().unwrap_or(0) as f64 / self.bucket.as_secs_f64()
    }

    /// Start time of bucket `idx`.
    pub fn bucket_start(&self, idx: usize) -> SimTime {
        SimTime::from_micros(self.bucket.as_micros() * idx as u64)
    }

    /// Iterates over `(bucket_start, input_hz, output_hz)` rows — the series
    /// plotted in Fig. 7.
    pub fn rows(&self) -> impl Iterator<Item = (SimTime, f64, f64)> + '_ {
        (0..self.len())
            .map(move |i| (self.bucket_start(i), self.input_rate_hz(i), self.output_rate_hz(i)))
    }

    /// Indices of buckets whose input rate exceeds `threshold_hz` — used to
    /// count DSM's replay spikes in Fig. 7a.
    pub fn input_spikes(&self, threshold_hz: f64) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.input_rate_hz(i) > threshold_hz).collect()
    }
}

/// Extracts all end-to-end latencies (ms) of sink arrivals in `[from, to)`
/// — raw samples for percentile analysis.
pub fn latency_samples_ms(log: &TraceLog, from: SimTime, to: SimTime) -> Vec<f64> {
    log.iter()
        .filter_map(|e| match *e {
            TraceEvent::SinkArrival { at, generated_at, .. } if at >= from && at < to => {
                Some(at.saturating_since(generated_at).as_millis_f64())
            }
            _ => None,
        })
        .collect()
}

/// Windowed average end-to-end latency, as in Fig. 9 (10 s windows).
///
/// Latency of a sink arrival is measured from the root's *generation*
/// instant (when the external stream produced it), so source-side buffering
/// during a paused migration shows up as elevated latency — exactly the
/// bulge between the restore and stabilization marks in Fig. 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTimeline {
    bucket: SimDuration,
    sum_ms: Vec<f64>,
    count: Vec<u32>,
}

impl LatencyTimeline {
    /// Builds a latency timeline from a trace with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn from_trace(log: &TraceLog, bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let mut sum_ms: Vec<f64> = Vec::new();
        let mut count: Vec<u32> = Vec::new();
        let w = bucket.as_micros();
        for e in log.iter() {
            if let TraceEvent::SinkArrival { at, generated_at, .. } = *e {
                let idx = (at.as_micros() / w) as usize;
                if sum_ms.len() <= idx {
                    sum_ms.resize(idx + 1, 0.0);
                    count.resize(idx + 1, 0);
                }
                sum_ms[idx] += at.saturating_since(generated_at).as_millis_f64();
                count[idx] += 1;
            }
        }
        LatencyTimeline { bucket, sum_ms, count }
    }

    /// Window width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.count.len()
    }

    /// Returns true if no window has data.
    pub fn is_empty(&self) -> bool {
        self.count.is_empty()
    }

    /// Average latency in window `idx` (milliseconds), if any events arrived.
    pub fn avg_latency_ms(&self, idx: usize) -> Option<f64> {
        match self.count.get(idx) {
            Some(&c) if c > 0 => Some(self.sum_ms[idx] / c as f64),
            _ => None,
        }
    }

    /// Iterates over `(window_start, avg_latency_ms)` rows, skipping empty
    /// windows — the series plotted in Fig. 9.
    pub fn rows(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        (0..self.len()).filter_map(move |i| {
            self.avg_latency_ms(i)
                .map(|l| (SimTime::from_micros(self.bucket.as_micros() * i as u64), l))
        })
    }

    /// Median of the per-window averages over `[from, to)` — the paper's
    /// "stable latency" horizontal line in Fig. 9.
    pub fn median_latency_ms(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut vals: Vec<f64> =
            self.rows().filter(|&(t, _)| t >= from && t < to).map(|(_, l)| l).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Some(vals[vals.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RootId;

    fn emit(root: u64, at_ms: u64) -> TraceEvent {
        TraceEvent::SourceEmit {
            root: RootId(root),
            at: SimTime::from_millis(at_ms),
            replay: false,
        }
    }

    fn arrive(root: u64, at_ms: u64, gen_ms: u64) -> TraceEvent {
        TraceEvent::SinkArrival {
            root: RootId(root),
            at: SimTime::from_millis(at_ms),
            generated_at: SimTime::from_millis(gen_ms),
            old: false,
            replayed: false,
        }
    }

    #[test]
    fn rates_per_bucket() {
        let mut log = TraceLog::new();
        // 20 emissions in bucket 0 (0-10 s), 5 in bucket 1.
        for i in 0..20 {
            log.record(emit(i, i * 100));
        }
        for i in 0..5 {
            log.record(emit(100 + i, 10_000 + i * 100));
        }
        let tl = RateTimeline::from_trace(&log, SimDuration::from_secs(10));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.input_rate_hz(0), 2.0);
        assert_eq!(tl.input_rate_hz(1), 0.5);
        assert_eq!(tl.output_rate_hz(0), 0.0);
        assert_eq!(tl.bucket_start(1), SimTime::from_secs(10));
    }

    #[test]
    fn spike_detection() {
        let mut log = TraceLog::new();
        for i in 0..5 {
            log.record(emit(i, i * 1000)); // bucket 0: 0.5 ev/s
        }
        for i in 0..200 {
            log.record(emit(1000 + i, 10_000 + i * 10)); // bucket 1: 20 ev/s
        }
        let tl = RateTimeline::from_trace(&log, SimDuration::from_secs(10));
        assert_eq!(tl.input_spikes(10.0), vec![1]);
    }

    #[test]
    fn latency_windows_average_and_skip_empty() {
        let mut log = TraceLog::new();
        log.record(arrive(1, 1_000, 500)); // 500 ms latency, window 0
        log.record(arrive(2, 2_000, 1_000)); // 1000 ms latency, window 0
        log.record(arrive(3, 25_000, 24_100)); // 900 ms, window 2
        let tl = LatencyTimeline::from_trace(&log, SimDuration::from_secs(10));
        assert_eq!(tl.avg_latency_ms(0), Some(750.0));
        assert_eq!(tl.avg_latency_ms(1), None);
        assert_eq!(tl.avg_latency_ms(2), Some(900.0));
        let rows: Vec<_> = tl.rows().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn median_stable_latency() {
        let mut log = TraceLog::new();
        for w in 0..5u64 {
            // One arrival per window, latencies 100, 200, 300, 400, 500 ms.
            log.record(arrive(w, w * 10_000 + 1_000, w * 10_000 + 1_000 - (w + 1) * 100));
        }
        let tl = LatencyTimeline::from_trace(&log, SimDuration::from_secs(10));
        let med = tl.median_latency_ms(SimTime::ZERO, SimTime::from_secs(50)).unwrap();
        assert_eq!(med, 300.0);
        assert_eq!(tl.median_latency_ms(SimTime::from_secs(100), SimTime::from_secs(110)), None);
    }

    #[test]
    fn latency_samples_extract_window() {
        let mut log = TraceLog::new();
        log.record(arrive(1, 1_000, 500));
        log.record(arrive(2, 12_000, 11_000));
        let all = latency_samples_ms(&log, SimTime::ZERO, SimTime::from_secs(60));
        assert_eq!(all, vec![500.0, 1_000.0]);
        let w2 = latency_samples_ms(&log, SimTime::from_secs(10), SimTime::from_secs(20));
        assert_eq!(w2, vec![1_000.0]);
    }

    #[test]
    fn empty_trace_yields_empty_timelines() {
        let log = TraceLog::new();
        let rt = RateTimeline::from_trace(&log, SimDuration::from_secs(10));
        assert!(rt.is_empty());
        assert_eq!(rt.input_rate_hz(3), 0.0);
        let lt = LatencyTimeline::from_trace(&log, SimDuration::from_secs(10));
        assert!(lt.is_empty());
    }
}
