//! Small summary-statistics helpers for aggregating across seeds/runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Online summary of a sample: count, mean, min, max, standard deviation.
///
/// Uses Welford's algorithm so it is numerically stable for long runs.
///
/// # Examples
///
/// ```
/// use flowmig_metrics::Summary;
///
/// let s: Summary = [7.1, 7.3, 7.2].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 7.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population standard deviation (0 for fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Median of a slice (interpolated for even lengths). Returns `None` for an
/// empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("values must be comparable"));
    let n = v.len();
    Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
}

/// Percentile of a slice by the nearest-rank method (`q` in `[0, 1]`).
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or not finite.
///
/// # Examples
///
/// ```
/// use flowmig_metrics::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
/// assert_eq!(percentile(&xs, 0.5), Some(5.0));
/// assert_eq!(percentile(&xs, 0.99), Some(10.0));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// ```
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!(q.is_finite() && (0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("values must be comparable"));
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Some(v[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(7.26);
        assert_eq!(s.mean(), 7.26);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), Some(7.26));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), Some(50.0));
        assert_eq!(percentile(&xs, 0.95), Some(95.0));
        assert_eq!(percentile(&xs, 0.999), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_bad_quantile() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
