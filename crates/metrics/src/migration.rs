//! The paper's §4 migration quality metrics, computed from a trace.

use crate::stability::{find_stabilization, StabilityCriteria};
use crate::timeline::RateTimeline;
use crate::trace::{MigrationPhase, TraceLog};
use flowmig_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// All seven §4 metrics for one migration run.
///
/// Times 1–6 are reported **relative to the migration request** (the paper
/// plots them on an axis where the request is time 0). `None` means the
/// metric does not apply to the strategy (e.g. drain time for DSM, recovery
/// time for DCR/CCR) or the run never reached the state (e.g. never
/// stabilized before the horizon).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationMetrics {
    /// 1) Restore duration: request → first sink arrival after the request.
    pub restore: Option<SimDuration>,
    /// 2) Drain/Capture duration: request → rebalance initiation (all
    ///    COMMITs acked). Not applicable (None) for DSM.
    pub drain_capture: Option<SimDuration>,
    /// 3) Rebalance duration: span of the rebalance command.
    pub rebalance: Option<SimDuration>,
    /// 4) Catchup time: request → last pre-request root at sink (DSM/CCR).
    pub catchup: Option<SimDuration>,
    /// 5) Recovery time: request → last replayed post-request root at sink
    ///    (DSM only).
    pub recovery: Option<SimDuration>,
    /// 6) Rate stabilization time: request → start of the first 60 s window
    ///    with output within 20 % of expected.
    pub stabilization: Option<SimDuration>,
    /// 7) Message loss/recovery count: roots failed and replayed.
    pub replayed_messages: u64,
    /// Data events dropped at dead/absent instances (component of 7).
    pub dropped_messages: u64,
    /// Span of the COMMIT phase alone (checkpoint persist wave) — the
    /// quantity the parallel-wave work optimizes. `None` for strategies
    /// without an explicit commit phase (DSM migrations).
    pub commit_wave: Option<SimDuration>,
    /// Span of the Restore phase alone (rebalance completion → INIT wave
    /// fully acked), the other half of the parallel-wave critical path.
    pub restore_wave: Option<SimDuration>,
    /// Total time store operations spent waiting in per-shard FIFO
    /// queues over the whole run — the contention the parallel-wave
    /// windows are fighting. `None` when nothing queued (always the case
    /// under the zero-queueing store model).
    pub store_wait: Option<SimDuration>,
    /// Persists priced as a quorum over a replicated store (0 for
    /// unreplicated runs).
    pub quorum_persists: u64,
    /// Quorum persists that completed while a shard replica was down.
    pub degraded_persists: u64,
    /// Store operations rejected for lack of live replicas (0 without a
    /// shard outage).
    pub store_failures: u64,
    /// Total time store shards spent with replicas down. `None` when no
    /// shard outage was injected.
    pub shard_downtime: Option<SimDuration>,
    /// Bytes of state moved through the store by key-range persists and
    /// restores (0 for whole-instance strategies, which never record
    /// range events).
    pub moved_bytes: u64,
    /// Bytes of cold key-range state left in place by key-range persists
    /// — what a whole-instance migration would additionally have moved
    /// (0 for whole-instance strategies).
    pub resident_bytes: u64,
    /// Contiguous key ranges persisted by key-range COMMITs (0 for
    /// whole-instance strategies).
    pub ranges_moved: u64,
}

impl MigrationMetrics {
    /// Computes all metrics from a trace.
    ///
    /// `criteria` supplies the expected output rate and stability band;
    /// `bucket` is the throughput bucket width (paper: 10 s).
    ///
    /// Returns a zeroed struct if the trace records no migration request.
    pub fn from_trace(log: &TraceLog, criteria: &StabilityCriteria, bucket: SimDuration) -> Self {
        let Some(req) = log.migration_requested_at() else {
            return Self::default();
        };
        let rel = |t: SimTime| t.saturating_since(req);

        // Restore: first sink arrival after the dataflow goes dark. The
        // rebalance kills every migrating instance, so nothing can reach a
        // sink until redeployment completes — except events already in
        // network flight to the sink at the kill instant (a few ms), which
        // the paper does not count ("during this period there will be no
        // output events"). Baseline on the rebalance END: correct for all
        // strategies and free of those millisecond stragglers.
        let rebalance_end = log.phase_span(MigrationPhase::Rebalance).map_or(req, |(_, e)| e);
        let restore = log.first_sink_arrival_after(rebalance_end).map(rel);
        let drain_capture = log
            .phase_span(MigrationPhase::Drain)
            .zip(log.phase_span(MigrationPhase::Commit))
            .map(|((_, _), (_, commit_end))| rel(commit_end));
        let rebalance = log.phase_span(MigrationPhase::Rebalance).map(|(s, e)| e - s);
        // Catchup counts old events that *survive* the migration — i.e.
        // arrive after the redeployment. Old events drained before the
        // kill (DCR) don't count: the paper reports no catchup for DCR.
        let catchup = log.last_old_sink_arrival().filter(|&t| t >= rebalance_end).map(rel);
        let recovery = log.last_replayed_new_sink_arrival().map(rel);

        let timeline = RateTimeline::from_trace(log, bucket);
        let stabilization = find_stabilization(&timeline, criteria, req).map(rel);
        let commit_wave = log.phase_span(MigrationPhase::Commit).map(|(s, e)| e - s);
        let restore_wave = log.phase_span(MigrationPhase::Restore).map(|(s, e)| e - s);
        let store_wait = Some(log.store_queue_wait()).filter(|w| !w.is_zero());
        let shard_downtime = Some(log.shard_downtime()).filter(|d| !d.is_zero());

        MigrationMetrics {
            restore,
            drain_capture,
            rebalance,
            catchup,
            recovery,
            stabilization,
            replayed_messages: log.replayed_count(),
            dropped_messages: log.dropped_count(),
            commit_wave,
            restore_wave,
            store_wait,
            quorum_persists: log.quorum_persists(),
            degraded_persists: log.degraded_persists(),
            store_failures: log.store_failed_ops(),
            shard_downtime,
            moved_bytes: log.range_moved_bytes(),
            resident_bytes: log.range_resident_bytes(),
            ranges_moved: log.ranges_moved(),
        }
    }

    /// Total user-visible migration span: the maximum of restore, catchup
    /// and recovery (the top of the stacked bars in Fig. 5).
    pub fn total_migration(&self) -> Option<SimDuration> {
        [self.restore, self.catchup, self.recovery].into_iter().flatten().max()
    }
}

fn fmt_opt(d: Option<SimDuration>) -> String {
    match d {
        Some(d) => format!("{:.1}s", d.as_secs_f64()),
        None => "-".to_owned(),
    }
}

impl fmt::Display for MigrationMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restore={} drain={} rebalance={} catchup={} recovery={} stabilization={} \
             commit_wave={} restore_wave={} store_wait={} replayed={} dropped={}",
            fmt_opt(self.restore),
            fmt_opt(self.drain_capture),
            fmt_opt(self.rebalance),
            fmt_opt(self.catchup),
            fmt_opt(self.recovery),
            fmt_opt(self.stabilization),
            fmt_opt(self.commit_wave),
            fmt_opt(self.restore_wave),
            fmt_opt(self.store_wait),
            self.replayed_messages,
            self.dropped_messages,
        )?;
        // The realism-tier counters only print when the run exercised them,
        // so unreplicated outage-free summaries stay byte-identical.
        if self.quorum_persists > 0 {
            write!(
                f,
                " quorum_persists={} degraded={}",
                self.quorum_persists, self.degraded_persists
            )?;
        }
        if self.store_failures > 0 || self.shard_downtime.is_some() {
            write!(
                f,
                " store_failures={} shard_downtime={}",
                self.store_failures,
                fmt_opt(self.shard_downtime),
            )?;
        }
        if self.ranges_moved > 0 {
            write!(
                f,
                " ranges_moved={} moved_bytes={} resident_bytes={}",
                self.ranges_moved, self.moved_bytes, self.resident_bytes,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RootId, TraceEvent};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// A miniature DSM-shaped trace: request at 180 s, rebalance 180–187,
    /// zero output until 240 s, old root lands at 260 s, replayed new root
    /// at 290 s, steady 8 ev/s output resuming at 300 s.
    fn dsm_like_trace() -> TraceLog {
        let mut log = TraceLog::new();
        // Steady state before migration: 8 ev/s output 0–180 s.
        let mut root = 0u64;
        for s in 0..180u64 {
            for k in 0..8u64 {
                let at = SimTime::from_millis(s * 1000 + k * 125);
                log.record(TraceEvent::SinkArrival {
                    root: RootId(root),
                    at,
                    generated_at: at,
                    old: true,
                    replayed: false,
                });
                root += 1;
            }
        }
        log.record(TraceEvent::MigrationRequested { at: t(180) });
        log.record(TraceEvent::PhaseStarted { phase: MigrationPhase::Rebalance, at: t(180) });
        log.record(TraceEvent::PhaseEnded { phase: MigrationPhase::Rebalance, at: t(187) });
        log.record(TraceEvent::SourceEmit { root: RootId(900_000), at: t(210), replay: true });
        log.record(TraceEvent::SourceEmit { root: RootId(900_001), at: t(211), replay: true });
        // First output after request at 240 s; old root at 260; replayed new at 290.
        log.record(TraceEvent::SinkArrival {
            root: RootId(900_002),
            at: t(240),
            generated_at: t(200),
            old: false,
            replayed: false,
        });
        log.record(TraceEvent::SinkArrival {
            root: RootId(900_000),
            at: t(260),
            generated_at: t(179),
            old: true,
            replayed: true,
        });
        log.record(TraceEvent::SinkArrival {
            root: RootId(900_001),
            at: t(290),
            generated_at: t(200),
            old: false,
            replayed: true,
        });
        // Steady output from 300 s to 420 s.
        for s in 300..420u64 {
            for k in 0..8u64 {
                let at = SimTime::from_millis(s * 1000 + k * 125);
                log.record(TraceEvent::SinkArrival {
                    root: RootId(root),
                    at,
                    generated_at: at,
                    old: false,
                    replayed: false,
                });
                root += 1;
            }
        }
        log
    }

    #[test]
    fn dsm_shaped_metrics() {
        let log = dsm_like_trace();
        let m = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(m.restore, Some(SimDuration::from_secs(60)));
        assert_eq!(m.drain_capture, None); // no drain/commit phases for DSM
        assert_eq!(m.rebalance, Some(SimDuration::from_secs(7)));
        assert_eq!(m.catchup, Some(SimDuration::from_secs(80))); // 260-180
        assert_eq!(m.recovery, Some(SimDuration::from_secs(110))); // 290-180
        assert_eq!(m.stabilization, Some(SimDuration::from_secs(120))); // 300 s
        assert_eq!(m.replayed_messages, 2);
        assert_eq!(m.total_migration(), Some(SimDuration::from_secs(110)));
    }

    #[test]
    fn drain_metric_requires_both_phases() {
        let mut log = TraceLog::new();
        log.record(TraceEvent::MigrationRequested { at: t(10) });
        log.record(TraceEvent::PhaseStarted { phase: MigrationPhase::Drain, at: t(10) });
        log.record(TraceEvent::PhaseEnded { phase: MigrationPhase::Drain, at: t(12) });
        log.record(TraceEvent::PhaseStarted { phase: MigrationPhase::Commit, at: t(12) });
        log.record(TraceEvent::PhaseEnded { phase: MigrationPhase::Commit, at: t(13) });
        let m = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(m.drain_capture, Some(SimDuration::from_secs(3)));
        assert_eq!(m.commit_wave, Some(SimDuration::from_secs(1)), "12s → 13s commit span");
        assert_eq!(m.restore_wave, None, "no restore phase in this trace");
    }

    #[test]
    fn no_request_yields_default() {
        let log = TraceLog::new();
        let m = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(m, MigrationMetrics::default());
        assert_eq!(m.total_migration(), None);
    }

    #[test]
    fn display_renders_dashes_for_missing() {
        let m = MigrationMetrics::default();
        let s = m.to_string();
        assert!(s.contains("restore=-"));
        assert!(s.contains("store_wait=-"));
        assert!(s.contains("replayed=0"));
    }

    #[test]
    fn store_wait_sums_queue_events_and_stays_none_without_them() {
        use flowmig_topology::InstanceId;
        let mut log = TraceLog::new();
        log.record(TraceEvent::MigrationRequested { at: t(10) });
        let quiet = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(quiet.store_wait, None, "no queueing events → no span");

        log.record(TraceEvent::StoreQueueWait {
            instance: InstanceId::from_index(1),
            shard: 1,
            wait: SimDuration::from_millis(3),
            at: t(11),
        });
        log.record(TraceEvent::StoreQueueWait {
            instance: InstanceId::from_index(9),
            shard: 1,
            wait: SimDuration::from_millis(7),
            at: t(12),
        });
        let m = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(m.store_wait, Some(SimDuration::from_millis(10)));
        assert_eq!(log.store_queued_ops(), 2);
    }

    #[test]
    fn range_ledger_surfaces_in_metrics_and_display_only_when_scoped() {
        use flowmig_topology::InstanceId;
        let mut log = TraceLog::new();
        log.record(TraceEvent::MigrationRequested { at: t(10) });
        let whole = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!((whole.moved_bytes, whole.resident_bytes, whole.ranges_moved), (0, 0, 0));
        assert!(
            !whole.to_string().contains("moved_bytes"),
            "whole-instance summaries stay byte-identical"
        );

        log.record(TraceEvent::RangePersist {
            instance: InstanceId::from_index(4),
            ranges: 2,
            moved_bytes: 96,
            resident_bytes: 16,
            at: t(12),
        });
        log.record(TraceEvent::RangeRestore {
            instance: InstanceId::from_index(4),
            ranges: 2,
            moved_bytes: 96,
            at: t(20),
        });
        let scoped = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(scoped.moved_bytes, 192, "persist + restore both ride the store");
        assert_eq!(scoped.resident_bytes, 16);
        assert_eq!(scoped.ranges_moved, 2);
        let s = scoped.to_string();
        assert!(s.contains("ranges_moved=2"));
        assert!(s.contains("moved_bytes=192"));
        assert!(s.contains("resident_bytes=16"));
    }

    #[test]
    fn catchup_ignores_pre_request_old_arrivals() {
        // Old roots that landed *before* the request must not register as
        // catchup (DCR: no old events after migration).
        let mut log = TraceLog::new();
        log.record(TraceEvent::SinkArrival {
            root: RootId(1),
            at: t(5),
            generated_at: t(4),
            old: true,
            replayed: false,
        });
        log.record(TraceEvent::MigrationRequested { at: t(10) });
        let m = MigrationMetrics::from_trace(
            &log,
            &StabilityCriteria::paper(8.0),
            SimDuration::from_secs(10),
        );
        assert_eq!(m.catchup, None);
    }
}
