//! Rate stabilization detection (§4 metric 6).
//!
//! The paper defines stability as "the observed output rate sustained
//! within 20 % of the expected output rate for 60 secs. The start of this
//! stable time window indicates stabilization."

use crate::timeline::RateTimeline;
use flowmig_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the stabilization detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityCriteria {
    /// Expected steady output rate (ev/s), e.g. 32 for Grid.
    pub expected_rate_hz: f64,
    /// Relative tolerance band (paper: 0.2 = ±20 %).
    pub tolerance: f64,
    /// Length of the window that must stay in band (paper: 60 s).
    pub window: SimDuration,
}

impl StabilityCriteria {
    /// The paper's criteria for a dataflow with the given expected rate.
    pub fn paper(expected_rate_hz: f64) -> Self {
        StabilityCriteria { expected_rate_hz, tolerance: 0.2, window: SimDuration::from_secs(60) }
    }

    /// Whether `rate_hz` is within the tolerance band.
    pub fn in_band(&self, rate_hz: f64) -> bool {
        (rate_hz - self.expected_rate_hz).abs() <= self.tolerance * self.expected_rate_hz
    }
}

/// Finds the start of the first window of `criteria.window` length, at or
/// after `from`, in which every bucket's output rate stays in band.
///
/// Returns `None` if no such window exists within the timeline (the run
/// never re-stabilized before the horizon).
///
/// # Examples
///
/// ```
/// use flowmig_metrics::{find_stabilization, RateTimeline, RootId, StabilityCriteria,
///                       TraceEvent, TraceLog};
/// use flowmig_sim::{SimDuration, SimTime};
///
/// // 8 ev/s steady output for 120 s.
/// let mut log = TraceLog::new();
/// for i in 0..960u64 {
///     log.record(TraceEvent::SinkArrival {
///         root: RootId(i),
///         at: SimTime::from_millis(i * 125),
///         generated_at: SimTime::from_millis(i * 125),
///         old: false,
///         replayed: false,
///     });
/// }
/// let tl = RateTimeline::from_trace(&log, SimDuration::from_secs(10));
/// let t = find_stabilization(&tl, &StabilityCriteria::paper(8.0), SimTime::ZERO);
/// assert_eq!(t, Some(SimTime::ZERO));
/// ```
pub fn find_stabilization(
    timeline: &RateTimeline,
    criteria: &StabilityCriteria,
    from: SimTime,
) -> Option<SimTime> {
    let bucket_us = timeline.bucket().as_micros();
    let need = (criteria.window.as_micros().div_ceil(bucket_us)) as usize;
    if need == 0 || timeline.len() < need {
        return None;
    }
    let first = (from.as_micros().div_ceil(bucket_us)) as usize;
    'outer: for start in first..=(timeline.len() - need) {
        for i in start..start + need {
            if !criteria.in_band(timeline.output_rate_hz(i)) {
                continue 'outer;
            }
        }
        return Some(timeline.bucket_start(start));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RootId, TraceEvent, TraceLog};

    /// Builds a trace whose output rate per 10 s bucket follows `rates`.
    fn trace_with_rates(rates: &[u32]) -> RateTimeline {
        let mut log = TraceLog::new();
        let mut root = 0u64;
        for (b, &per_sec) in rates.iter().enumerate() {
            for s in 0..10u64 {
                for k in 0..per_sec as u64 {
                    let at = SimTime::from_millis(
                        (b as u64 * 10 + s) * 1000 + k * (1000 / per_sec.max(1) as u64).max(1),
                    );
                    log.record(TraceEvent::SinkArrival {
                        root: RootId(root),
                        at,
                        generated_at: at,
                        old: false,
                        replayed: false,
                    });
                    root += 1;
                }
            }
        }
        // NOTE: arrivals are generated bucket-major so time order holds.
        RateTimeline::from_trace(&log, SimDuration::from_secs(10))
    }

    #[test]
    fn detects_start_of_stable_window() {
        // 0 output for 3 buckets (migration), overload at 12 ev/s for 2,
        // then steady 8 ev/s.
        let tl = trace_with_rates(&[8, 8, 0, 0, 0, 12, 12, 8, 8, 8, 8, 8, 8, 8]);
        let c = StabilityCriteria::paper(8.0);
        let at = find_stabilization(&tl, &c, SimTime::from_secs(20)).unwrap();
        assert_eq!(at, SimTime::from_secs(70));
    }

    #[test]
    fn band_is_relative() {
        let c = StabilityCriteria::paper(32.0);
        assert!(c.in_band(32.0));
        assert!(c.in_band(38.4)); // +20 %
        assert!(c.in_band(25.6)); // -20 %
        assert!(!c.in_band(38.5));
        assert!(!c.in_band(25.5));
        assert!(!c.in_band(0.0));
    }

    #[test]
    fn never_stable_returns_none() {
        let tl = trace_with_rates(&[0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(find_stabilization(&tl, &StabilityCriteria::paper(8.0), SimTime::ZERO), None);
    }

    #[test]
    fn window_must_fit_in_timeline() {
        let tl = trace_with_rates(&[8, 8, 8]); // only 30 s of data
        assert_eq!(find_stabilization(&tl, &StabilityCriteria::paper(8.0), SimTime::ZERO), None);
    }

    #[test]
    fn from_bound_is_respected() {
        let tl = trace_with_rates(&[8, 8, 8, 8, 8, 8, 8, 8, 8, 8]);
        let c = StabilityCriteria::paper(8.0);
        assert_eq!(find_stabilization(&tl, &c, SimTime::ZERO), Some(SimTime::ZERO));
        assert_eq!(
            find_stabilization(&tl, &c, SimTime::from_secs(15)),
            Some(SimTime::from_secs(20))
        );
    }
}
